//! Cross-checks the Figure 3 harness against the telemetry pipeline:
//! the bench-reported averages must equal the values derived from the
//! telemetry histogram snapshots it now records through — one
//! accounting code path, no drift between "what the bench prints" and
//! "what the metrics say".

use mmcs_bench::fig3::{run, run_narada_sharded, Fig3Config, SystemResult};
use mmcs_telemetry::HistogramSnapshot;
use mmcs_util::rate::Bandwidth;

fn small_config() -> Fig3Config {
    Fig3Config {
        packets: 100,
        receivers: 10,
        measured: 2,
        relay_nic: Bandwidth::from_mbps(8),
        ..Fig3Config::default()
    }
}

fn crosscheck(side: &str, result: &SystemResult, measured: usize) {
    // The headline numbers are derived from the snapshots: equality is
    // exact, not approximate.
    assert_eq!(
        result.avg_delay_ms,
        result.delay_hist.mean() / 1e6,
        "{side}: avg delay must come from the delay histogram"
    );
    assert_eq!(
        result.avg_jitter_ms,
        result.jitter_hist.mean() / 1e6,
        "{side}: avg jitter must come from the jitter histogram"
    );
    // The snapshot mean is itself exact count-and-sum arithmetic.
    assert_eq!(
        result.delay_hist.mean(),
        result.delay_hist.sum() as f64 / result.delay_hist.count() as f64,
        "{side}: histogram mean must be exact sum/count"
    );
    // One jitter sample per measured receiver; delay samples pooled
    // across them.
    assert_eq!(result.jitter_hist.count(), measured as u64);
    assert!(result.delay_hist.count() >= result.received as u64);
    // The average sits inside the recorded range.
    let lo = result.delay_hist.min().expect("samples recorded") as f64 / 1e6;
    let hi = result.delay_hist.max().expect("samples recorded") as f64 / 1e6;
    assert!(
        (lo..=hi).contains(&result.avg_delay_ms),
        "{side}: avg {} outside [{lo}, {hi}]",
        result.avg_delay_ms
    );
}

#[test]
fn fig3_averages_equal_their_histogram_derivation() {
    let config = small_config();
    let result = run(&config);
    crosscheck("narada", &result.narada, config.measured);
    crosscheck("jmf", &result.jmf, config.measured);
    // Same seed, same code path: a second run reproduces the snapshots
    // bit-for-bit, histograms included.
    let again = run(&config);
    assert_eq!(result.narada.delay_hist, again.narada.delay_hist);
    assert_eq!(result.jmf.jitter_hist, again.jmf.jitter_hist);
}

#[test]
fn sharded_fig3_per_shard_pools_merge_to_the_system_histogram() {
    let config = small_config();
    for shards in [1usize, 3] {
        let result = run_narada_sharded(&config, shards);
        assert_eq!(result.shards, shards);
        assert_eq!(result.shard_delay.len(), shards);
        crosscheck("narada-sharded", &result.system, config.measured);
        // The per-home-shard pools are a *partition* of the measured
        // delay samples: merging them (in any order) reproduces the
        // system histogram exactly — count, sum, buckets and therefore
        // the exact mean. One accounting code path across shards.
        let merged = HistogramSnapshot::merge_all(&result.shard_delay);
        assert_eq!(
            merged, result.system.delay_hist,
            "{shards} shards: merged per-shard pools must equal the pooled histogram"
        );
        let mut reversed: Vec<HistogramSnapshot> = result.shard_delay.clone();
        reversed.reverse();
        assert_eq!(
            HistogramSnapshot::merge_all(&reversed).mean(),
            result.system.delay_hist.mean(),
            "merge order must not perturb the exact mean"
        );
        // And the second run is bit-identical, shard pools included.
        let again = run_narada_sharded(&config, shards);
        assert_eq!(result.shard_delay, again.shard_delay);
    }
}
