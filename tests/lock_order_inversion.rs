//! End-to-end tests for the instrumented `parking_lot` shim's lock-order
//! deadlock detector and hold-time watchdog.
//!
//! Everything lives in one `#[test]` because the detector's order graph
//! is process-global: sequencing the scenarios in a single function
//! keeps `edge_count`/`reset` assertions deterministic no matter how the
//! harness schedules tests. The whole file is compiled out in release
//! mode (the detector only exists under `cfg(debug_assertions)`).
#![cfg(debug_assertions)]

use std::sync::Arc;
use std::time::Duration;

use parking_lot::deadlock::{self, LongHold};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[test]
fn detector_end_to_end() {
    assert!(deadlock::is_active(), "debug builds must have the detector");
    deadlock::reset();

    consistent_order_is_silent();
    seeded_mutex_inversion_panics();
    seeded_rwlock_inversion_panics();
    try_lock_records_no_order_edge();
    watchdog_flags_long_holds();
    runtime_edges_are_subset_of_static_graph();

    deadlock::reset();
    assert_eq!(deadlock::edge_count(), 0, "reset clears the order graph");
}

/// Nesting the same pair of locks in one consistent order, repeatedly
/// and from several threads, records edges but never panics.
fn consistent_order_is_silent() {
    let outer = Arc::new(Mutex::new(0u32));
    let inner = Arc::new(RwLock::new(0u32));
    let before = deadlock::edge_count();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let outer = Arc::clone(&outer);
        let inner = Arc::clone(&inner);
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                let guard: MutexGuard<'_, u32> = outer.lock();
                let read: RwLockReadGuard<'_, u32> = inner.read();
                assert_eq!(*guard, *read);
            }
        }));
    }
    for handle in handles {
        handle.join().expect("consistent order must not panic");
    }
    assert!(
        deadlock::edge_count() > before,
        "nested acquisitions must be observed by the detector"
    );
}

/// The seeded inversion from the issue: two mutexes acquired A→B on one
/// thread and B→A on another. The second thread must panic (potential
/// deadlock) even though the threads never actually contend — the
/// detector works off acquisition *order*, not luck.
fn seeded_mutex_inversion_panics() {
    let a = Arc::new(Mutex::new("a"));
    let b = Arc::new(Mutex::new("b"));

    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    std::thread::Builder::new()
        .name("order-ab".into())
        .spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        })
        .expect("spawn")
        .join()
        .expect("A then B is the first order seen; it must pass");

    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let inverted = std::thread::Builder::new()
        .name("order-ba".into())
        .spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock(); // closes the cycle: must panic here
        })
        .expect("spawn")
        .join();
    assert!(
        inverted.is_err(),
        "B then A contradicts the recorded order and must panic"
    );
}

/// The same inversion through RwLock read/write acquisitions.
fn seeded_rwlock_inversion_panics() {
    let a = Arc::new(RwLock::new(0u32));
    let b = Arc::new(RwLock::new(0u32));

    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    std::thread::spawn(move || {
        let _ga: RwLockWriteGuard<'_, u32> = a1.write();
        let _gb = b1.read();
    })
    .join()
    .expect("first order must pass");

    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let inverted = std::thread::spawn(move || {
        let _gb = b2.write();
        let _ga = a2.read();
    })
    .join();
    assert!(inverted.is_err(), "reader/writer inversion must panic too");
}

/// `try_lock` cannot block, so it must not contribute order edges: an
/// opposite blocking order established afterwards is legal.
fn try_lock_records_no_order_edge() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    {
        let _gb = b.lock();
        let _ga = a.try_lock().expect("uncontended try_lock succeeds");
        // (b -> a, but via try_lock: no edge recorded)
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ga = a.lock();
        let _gb = b.lock();
    }));
    assert!(
        result.is_ok(),
        "a -> b must be fine: the earlier try_lock order is not an edge"
    );
}

/// Every acquisition-order edge the runtime detector observed in this
/// process must also exist in the static lock-order graph that
/// `mmcs-analyze` builds from this very source file. The static pass is
/// an over-approximation (it simulates every path, the runtime only
/// sees executed interleavings), so runtime ⊆ static is the soundness
/// contract — a runtime edge missing statically would mean the lexer,
/// parser, or lock-class discovery lost an acquisition site.
fn runtime_edges_are_subset_of_static_graph() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/lock_order_inversion.rs");
    let content = std::fs::read_to_string(path).expect("read own source");
    let src = mmcs_analyze::scan::SourceFile::parse("tests/lock_order_inversion.rs", &content);
    let files = vec![mmcs_analyze::parse::parse_file(src)];
    let call_graph = mmcs_analyze::callgraph::CallGraph::build(&files, |_, _| true);
    let lock_graph = mmcs_analyze::passes::lock_order::build(&files, &call_graph);

    // Compare by construction-site line number: the runtime renders
    // `Location::file()` exactly as rustc was invoked, the static side
    // renders the path the file was parsed under; lines are the stable
    // common coordinate.
    fn site_line(site: &str) -> Option<u32> {
        let (file, line) = site.rsplit_once(':')?;
        if !file.ends_with("lock_order_inversion.rs") {
            return None;
        }
        line.parse().ok()
    }
    let static_lines: std::collections::BTreeSet<(u32, u32)> = lock_graph
        .site_edges(&files)
        .iter()
        .filter_map(|(from, to)| Some((site_line(from)?, site_line(to)?)))
        .collect();
    assert!(!static_lines.is_empty(), "static graph must see this file's locks");

    let runtime = deadlock::edges();
    assert!(
        !runtime.is_empty(),
        "the scenarios above must have recorded runtime edges"
    );
    let mut checked = 0usize;
    for (from, to) in runtime {
        let (Some(from_line), Some(to_line)) = (site_line(&from), site_line(&to)) else {
            continue; // a lock constructed outside this file: out of scope
        };
        assert!(
            static_lines.contains(&(from_line, to_line)),
            "runtime edge {from} -> {to} is missing from the static \
             lock-order graph {static_lines:?}"
        );
        checked += 1;
    }
    assert!(checked > 0, "subset check must cover at least one edge");
}

/// Holding a lock past the watchdog threshold is recorded (and the
/// record names this file as the lock's site).
fn watchdog_flags_long_holds() {
    deadlock::set_hold_threshold(Duration::from_millis(5));
    let slow = Mutex::new(());
    {
        let _guard = slow.lock();
        std::thread::sleep(Duration::from_millis(30));
    }
    deadlock::set_hold_threshold(Duration::from_millis(200));
    let holds: Vec<LongHold> = deadlock::long_holds();
    let hit = holds
        .iter()
        .find(|h| h.site.contains("lock_order_inversion.rs"))
        .expect("the slow hold must be recorded");
    assert!(hit.held >= Duration::from_millis(5));
    assert!(!hit.thread.is_empty());
    // The sub-threshold locks taken by the other scenarios must not
    // appear: a watchdog that cries on every acquisition is useless.
    assert_eq!(
        holds
            .iter()
            .filter(|h| h.site.contains("lock_order_inversion.rs"))
            .count(),
        1
    );
    assert_eq!(Mutex::new(7u32).into_inner(), 7);
}
