//! Oracle equivalence for the sharded broker runtime.
//!
//! The single-loop broker state machine (`BrokerNode`) is the oracle:
//! any random sequence of subscribe / unsubscribe / publish / detach
//! operations run against a `ShardedBroker` — at 1, 2, and 4 shards —
//! must produce the **identical sorted delivery multiset** the oracle
//! produces when fed the same sequence.
//!
//! Control operations on the sharded runtime are eventually consistent
//! across shards, so the sequence is settled with
//! [`ShardedBroker::quiesce`] after each control op (the equivalence
//! contract is exact *between control epochs*); publishes stream
//! freely. A backpressure variant re-runs the property with a soft
//! shard-queue capacity of 2 and mid-sequence worker stalls, so
//! publishes spin on full queues without changing what gets delivered.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::node::{Action, BrokerNode, Input, Origin};
use mmcs::broker::sharded::{ShardedBroker, ShardedClient};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs_util::id::{BrokerId, ClientId};

const CLIENTS: usize = 4;

/// One delivery, in a form that sorts: (receiver, topic, source, seq).
type Delivery = (u64, String, u64, u64);

/// One step of a random run.
#[derive(Debug, Clone)]
enum Op {
    Subscribe(usize, TopicFilter),
    Unsubscribe(usize, TopicFilter),
    Publish(usize, Topic),
    Detach(usize),
}

/// Topics over a small alphabet: collisions exercise overlap dedup,
/// distinct heads spread publishes across shards.
fn topic_strategy() -> impl Strategy<Value = Topic> {
    prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d", "e"]), 1..=3)
        .prop_map(Topic::from_segments)
}

fn filter_strategy() -> impl Strategy<Value = TopicFilter> {
    (
        prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d", "e", "*"]), 1..=3),
        any::<bool>(),
    )
        .prop_map(|(mut segments, tail)| {
            if tail {
                segments.push("#");
            }
            TopicFilter::parse(&segments.join("/")).expect("valid filter")
        })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..CLIENTS, filter_strategy()).prop_map(|(c, f)| Op::Subscribe(c, f)),
        2 => (0usize..CLIENTS, filter_strategy()).prop_map(|(c, f)| Op::Unsubscribe(c, f)),
        5 => (0usize..CLIENTS, topic_strategy()).prop_map(|(c, t)| Op::Publish(c, t)),
        1 => (0usize..CLIENTS).prop_map(Op::Detach),
    ]
}

/// Runs the sequence against the single-loop state machine, returning
/// the sorted delivery multiset. Ops that the node rejects (e.g. a
/// publish from a detached client) are silently skipped — the sharded
/// workers skip them too.
fn oracle_run(ops: &[Op]) -> Vec<Delivery> {
    let mut node = BrokerNode::new(BrokerId::from_raw(99));
    let clients: Vec<ClientId> = (1..=CLIENTS as u64).map(ClientId::from_raw).collect();
    for &client in &clients {
        node.handle(Input::AttachClient {
            client,
            profile: Default::default(),
        })
        .expect("oracle attach");
    }
    // Per-client sequence counters advance on every publish *attempt*,
    // mirroring `ShardedClient`'s internal counter.
    let mut seqs = [0u64; CLIENTS];
    let mut deliveries: Vec<Delivery> = Vec::new();
    for op in ops {
        match op {
            Op::Subscribe(index, filter) => {
                let _ = node.handle(Input::Subscribe {
                    client: clients[*index],
                    filter: filter.clone(),
                });
            }
            Op::Unsubscribe(index, filter) => {
                let _ = node.handle(Input::Unsubscribe {
                    client: clients[*index],
                    filter: filter.clone(),
                });
            }
            Op::Detach(index) => {
                let _ = node.handle(Input::DetachClient {
                    client: clients[*index],
                });
            }
            Op::Publish(index, topic) => {
                let seq = seqs[*index];
                seqs[*index] += 1;
                let event = Event::new(
                    topic.clone(),
                    clients[*index],
                    seq,
                    EventClass::Data,
                    Bytes::new(),
                )
                .into_shared();
                if let Ok(actions) = node.handle(Input::Publish {
                    origin: Origin::Client(clients[*index]),
                    event,
                }) {
                    for action in actions {
                        if let Action::Deliver { client, event, .. } = action {
                            deliveries.push((
                                client.value(),
                                event.topic.to_string(),
                                event.source.value(),
                                event.seq,
                            ));
                        }
                    }
                }
            }
        }
    }
    deliveries.sort_unstable();
    deliveries
}

/// Runs the sequence against a real `ShardedBroker`, quiescing after
/// every control op, and returns the sorted delivery multiset. Also
/// asserts per-(receiver, source, topic) sequence monotonicity in
/// arrival order — the per-topic ordering guarantee.
fn sharded_run(ops: &[Op], shards: usize, capacity: usize, stalls: bool) -> Vec<Delivery> {
    let broker = ShardedBroker::builder(shards).capacity(capacity).spawn();
    let clients: Vec<ShardedClient> = (0..CLIENTS).map(|_| broker.attach()).collect();
    broker.quiesce();
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Subscribe(index, filter) => {
                clients[*index].subscribe(filter.clone());
                broker.quiesce();
            }
            Op::Unsubscribe(index, filter) => {
                clients[*index].unsubscribe(filter.clone());
                broker.quiesce();
            }
            Op::Detach(index) => {
                // Settle in-flight publishes first so everything the
                // oracle delivered is already in the channel, then
                // detach and settle the detach itself.
                broker.quiesce();
                clients[*index].detach();
                broker.quiesce();
            }
            Op::Publish(index, topic) => {
                if stalls && step % 5 == 0 {
                    broker.stall_shard(step % shards, Duration::from_millis(2));
                }
                clients[*index].publish(topic.clone(), Bytes::new());
            }
        }
    }
    broker.quiesce();
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut last_seq: std::collections::HashMap<(u64, u64, String), u64> =
        std::collections::HashMap::new();
    for client in &clients {
        while let Some(event) = client.try_recv() {
            let key = (
                client.id().value(),
                event.source.value(),
                event.topic.to_string(),
            );
            if let Some(prev) = last_seq.get(&key) {
                assert!(
                    event.seq > *prev,
                    "per-topic order violated for {key:?}: {} after {prev}",
                    event.seq
                );
            }
            last_seq.insert(key, event.seq);
            deliveries.push((
                client.id().value(),
                event.topic.to_string(),
                event.source.value(),
                event.seq,
            ));
        }
    }
    deliveries.sort_unstable();
    deliveries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded runtime delivers exactly what the single-loop oracle
    /// delivers, at every shard count.
    #[test]
    fn sharded_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..30)) {
        let expected = oracle_run(&ops);
        for shards in [1usize, 2, 4] {
            let actual = sharded_run(&ops, shards, 65_536, false);
            prop_assert_eq!(&actual, &expected, "{} shards diverged", shards);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same property under backpressure: a soft shard-queue capacity of
    /// 2 plus mid-sequence worker stalls force publishes to spin on full
    /// queues, which must not change (or reorder within a topic) what
    /// gets delivered.
    #[test]
    fn sharded_matches_oracle_under_backpressure(
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        let expected = oracle_run(&ops);
        for shards in [2usize, 4] {
            let actual = sharded_run(&ops, shards, 2, true);
            prop_assert_eq!(&actual, &expected, "{} shards diverged under backpressure", shards);
        }
    }
}

/// Deterministic regression: overlapping wildcard and literal filters
/// across clients homed on different shards, with a detach mid-stream.
#[test]
fn mixed_filters_and_detach_match_oracle() {
    let f = |s: &str| TopicFilter::parse(s).expect("filter");
    let t = |s: &str| Topic::parse(s).expect("topic");
    let ops = vec![
        Op::Subscribe(0, f("#")),
        Op::Subscribe(1, f("a/#")),
        Op::Subscribe(2, f("*/x")),
        Op::Subscribe(0, f("a/x")),
        Op::Publish(3, t("a/x")),
        Op::Publish(3, t("b/x")),
        Op::Publish(3, t("a/y")),
        Op::Detach(1),
        Op::Publish(3, t("a/x")),
        Op::Unsubscribe(0, f("#")),
        Op::Publish(3, t("c/z")),
    ];
    let expected = oracle_run(&ops);
    for shards in [1usize, 2, 4] {
        assert_eq!(
            sharded_run(&ops, shards, 65_536, false),
            expected,
            "{shards} shards diverged"
        );
    }
}
